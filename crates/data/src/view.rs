//! Normalized exploration views.
//!
//! The paper normalizes every exploration attribute to `[0, 100]` so that
//! grid widths, sampling distances (γ, x, y) and area-size classes can be
//! reasoned about uniformly across domains (§3, footnote 2). A
//! [`NumericView`] is the d-dimensional, normalized projection of a table
//! onto the chosen exploration attributes; a [`SpaceMapper`] converts
//! points and rectangles between raw attribute values and normalized
//! coordinates (needed when translating the learned model back into a SQL
//! query over the original columns).
//!
//! # Columnar layout
//!
//! Points are stored as structure-of-arrays *column lanes*: one contiguous
//! `Vec<f64>` per dimension, all of length `len()`. Every rectangle
//! predicate the index layer evaluates — full scans, sorted residual
//! filters, k-d leaf sweeps, grid cell sweeps — runs through the branch-free
//! containment kernel ([`NumericView::scan_rect_into`] and friends), which
//! walks each lane in 64-row chunks accumulating a per-chunk bitmask of
//! `lo <= v && v <= hi` outcomes. The per-dimension inner loop has no
//! data-dependent branches, so the compiler auto-vectorizes it; the emitted
//! indices are still produced in ascending row order and the per-point
//! predicate is the exact same chain of `>=`/`<=` comparisons as
//! [`Rect::contains`], so results are bit-identical to the historical
//! row-major filter loops.
use aide_util::geom::Rect;

/// The raw value range of one attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Domain {
    lo: f64,
    hi: f64,
    /// `hi - lo`, computed once at construction so `normalize` does not
    /// re-derive it (twice) per call. The division by `width` itself is
    /// kept: multiplying by a precomputed `100.0 / width` rounds
    /// differently than `100.0 * (v - lo) / width` and would shift
    /// normalized coordinates by an ulp, breaking the pinned session
    /// fingerprints.
    width: f64,
}

impl Domain {
    /// Creates a domain.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or inverted.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid domain [{lo}, {hi}]"
        );
        Self {
            lo,
            hi,
            width: hi - lo,
        }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Raw width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Maps a raw value to `[0, 100]`, clamping values outside the domain.
    ///
    /// A zero-width domain maps everything to 0 (the attribute is constant
    /// and carries no exploration signal).
    #[inline]
    pub fn normalize(&self, v: f64) -> f64 {
        if self.width == 0.0 {
            return 0.0;
        }
        (100.0 * (v - self.lo) / self.width).clamp(0.0, 100.0)
    }

    /// Maps a normalized coordinate in `[0, 100]` back to a raw value.
    #[inline]
    pub fn denormalize(&self, t: f64) -> f64 {
        self.lo + self.width * (t / 100.0)
    }
}

/// Bidirectional mapping between raw attribute space and the normalized
/// `[0, 100]^d` exploration space.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceMapper {
    attrs: Vec<String>,
    domains: Vec<Domain>,
}

impl SpaceMapper {
    /// Creates a mapper for `attrs` with the given raw domains.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors differ in length or are empty.
    pub fn new(attrs: Vec<String>, domains: Vec<Domain>) -> Self {
        assert_eq!(attrs.len(), domains.len(), "attrs/domains length mismatch");
        assert!(!attrs.is_empty(), "a mapper needs at least one attribute");
        Self { attrs, domains }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute names in dimension order.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Raw domains in dimension order.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// Normalizes a raw point.
    pub fn normalize_point(&self, raw: &[f64]) -> Vec<f64> {
        assert_eq!(raw.len(), self.dims());
        raw.iter()
            .zip(&self.domains)
            .map(|(&v, d)| d.normalize(v))
            .collect()
    }

    /// Denormalizes a normalized point back to raw attribute values.
    pub fn denormalize_point(&self, norm: &[f64]) -> Vec<f64> {
        assert_eq!(norm.len(), self.dims());
        norm.iter()
            .zip(&self.domains)
            .map(|(&t, d)| d.denormalize(t))
            .collect()
    }

    /// Denormalizes a rectangle from normalized to raw coordinates.
    pub fn denormalize_rect(&self, rect: &Rect) -> Rect {
        assert_eq!(rect.dims(), self.dims());
        Rect::new(
            self.denormalize_point(rect.lo_slice()),
            self.denormalize_point(rect.hi_slice()),
        )
    }

    /// Normalizes a rectangle from raw to normalized coordinates.
    pub fn normalize_rect(&self, rect: &Rect) -> Rect {
        assert_eq!(rect.dims(), self.dims());
        Rect::new(
            self.normalize_point(rect.lo_slice()),
            self.normalize_point(rect.hi_slice()),
        )
    }
}

/// Rows per containment-kernel chunk: one `u64` mask bit per row.
const KERNEL_CHUNK: usize = 64;

/// A normalized, d-dimensional projection of a table.
///
/// Coordinates live in per-dimension column lanes (see the module docs);
/// `row_ids` maps each point back to its source row in the projected table,
/// which is how a sampled object is shown to the user with all its original
/// attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericView {
    mapper: SpaceMapper,
    /// One contiguous lane per dimension, each of length `len()`.
    lanes: Vec<Vec<f64>>,
    row_ids: Vec<u32>,
}

impl NumericView {
    /// Creates a view from normalized row-major data, transposing it into
    /// column lanes.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of the dimensionality or
    /// disagrees with `row_ids.len()`.
    pub fn new(mapper: SpaceMapper, data: Vec<f64>, row_ids: Vec<u32>) -> Self {
        let dims = mapper.dims();
        assert_eq!(data.len() % dims, 0, "ragged point buffer");
        assert_eq!(data.len() / dims, row_ids.len(), "row id count mismatch");
        let n = row_ids.len();
        let lanes = (0..dims)
            .map(|d| (0..n).map(|i| data[i * dims + d]).collect())
            .collect();
        Self {
            mapper,
            lanes,
            row_ids,
        }
    }

    /// Creates a view directly from per-dimension column lanes (no
    /// transpose). This is the native layout: generators and the
    /// `aide-view/1` loader build lanes straight into place.
    ///
    /// # Panics
    ///
    /// Panics if the lane count disagrees with the mapper's dimensionality
    /// or any lane's length disagrees with `row_ids.len()`.
    pub fn from_lanes(mapper: SpaceMapper, lanes: Vec<Vec<f64>>, row_ids: Vec<u32>) -> Self {
        assert_eq!(lanes.len(), mapper.dims(), "lane count mismatch");
        for lane in &lanes {
            assert_eq!(lane.len(), row_ids.len(), "row id count mismatch");
        }
        Self {
            mapper,
            lanes,
            row_ids,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.row_ids.len()
    }

    /// Whether the view has no points.
    pub fn is_empty(&self) -> bool {
        self.row_ids.is_empty()
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.mapper.dims()
    }

    /// Coordinate of point `i` along dimension `d`.
    #[inline]
    pub fn coord(&self, i: usize, d: usize) -> f64 {
        self.lanes[d][i]
    }

    /// The full column lane of dimension `d`.
    #[inline]
    pub fn lane(&self, d: usize) -> &[f64] {
        &self.lanes[d]
    }

    /// The normalized point at index `i`, gathered from the lanes into a
    /// fresh vector. Hot loops should prefer [`NumericView::coord`] /
    /// [`NumericView::fill_point`], which do not allocate.
    pub fn point_vec(&self, i: usize) -> Vec<f64> {
        self.lanes.iter().map(|lane| lane[i]).collect()
    }

    /// Gathers point `i` into `out` (a reusable buffer of length `dims`).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != dims()`.
    #[inline]
    pub fn fill_point(&self, i: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.lanes.len(), "point buffer dims mismatch");
        for (slot, lane) in out.iter_mut().zip(&self.lanes) {
            *slot = lane[i];
        }
    }

    /// Appends point `i`'s coordinates to `out` in dimension order.
    pub fn push_point_into(&self, i: usize, out: &mut Vec<f64>) {
        out.extend(self.lanes.iter().map(|lane| lane[i]));
    }

    /// The source-table row of point `i`.
    #[inline]
    pub fn row_id(&self, i: usize) -> u32 {
        self.row_ids[i]
    }

    /// All source-table rows in view order.
    pub fn row_ids(&self) -> &[u32] {
        &self.row_ids
    }

    /// The raw↔normalized mapper for this view.
    pub fn mapper(&self) -> &SpaceMapper {
        &self.mapper
    }

    /// Appends rows given as normalized row-major data, extending every
    /// lane in place. Existing rows (and therefore any index built over a
    /// prefix of the view) are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of the dimensionality or
    /// disagrees with `row_ids.len()`.
    pub fn append_rows(&mut self, data: &[f64], row_ids: &[u32]) {
        let dims = self.dims();
        assert_eq!(data.len() % dims, 0, "ragged point buffer");
        assert_eq!(data.len() / dims, row_ids.len(), "row id count mismatch");
        for (d, lane) in self.lanes.iter_mut().enumerate() {
            lane.extend(row_ids.iter().enumerate().map(|(r, _)| data[r * dims + d]));
        }
        self.row_ids.extend_from_slice(row_ids);
    }

    /// Row range `[start, end)` of shard `shard` when the view is split
    /// into `n_shards` contiguous row-range shards.
    ///
    /// The boundaries are a pure function of `(len, n_shards)` — the same
    /// contract as the `Pool` chunk decomposition — so the shard layout
    /// never depends on the thread count, and merging per-shard results in
    /// shard-index order reproduces the unsharded row order exactly.
    pub fn shard_bounds(len: usize, n_shards: usize, shard: usize) -> (usize, usize) {
        assert!(n_shards >= 1, "need at least one shard");
        assert!(shard < n_shards, "shard {shard} out of {n_shards}");
        (shard * len / n_shards, (shard + 1) * len / n_shards)
    }

    /// Splits the view into `n_shards` contiguous row-range shards.
    ///
    /// Shard `s` holds the rows of [`NumericView::shard_bounds`]`(len,
    /// n_shards, s)` with their original `row_id`s; shard *view indices*
    /// restart at 0, so callers mapping them back to positions in the
    /// unsharded view must add the shard's row offset. Every shard shares
    /// the parent's [`SpaceMapper`]. Shards may be empty when
    /// `n_shards > len`.
    ///
    /// ```
    /// use aide_data::view::{Domain, NumericView, SpaceMapper};
    ///
    /// let mapper = SpaceMapper::new(vec!["x".into()], vec![Domain::new(0.0, 100.0)]);
    /// let view = NumericView::new(mapper, vec![10.0, 20.0, 30.0, 40.0, 50.0], vec![0, 1, 2, 3, 4]);
    /// let shards = view.partition(2);
    /// assert_eq!(shards.len(), 2);
    /// // Boundaries are pure in (len, n_shards): 5 rows split 2/3.
    /// assert_eq!((shards[0].len(), shards[1].len()), (2, 3));
    /// // Row ids survive the split; concatenating shards in order
    /// // reproduces the original row order.
    /// assert_eq!(shards[1].row_id(0), 2);
    /// assert_eq!(shards[1].coord(0, 0), 30.0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `n_shards == 0`.
    pub fn partition(&self, n_shards: usize) -> Vec<NumericView> {
        assert!(n_shards >= 1, "need at least one shard");
        (0..n_shards)
            .map(|s| {
                let (start, end) = Self::shard_bounds(self.len(), n_shards, s);
                NumericView {
                    mapper: self.mapper.clone(),
                    lanes: self
                        .lanes
                        .iter()
                        .map(|lane| lane[start..end].to_vec())
                        .collect(),
                    row_ids: self.row_ids[start..end].to_vec(),
                }
            })
            .collect()
    }

    /// The branch-free containment kernel: appends to `out` the indices of
    /// every row in `[start, end)` lying inside `rect`, in ascending order.
    ///
    /// Rows are processed in chunks of 64; each dimension's lane segment is
    /// swept with a branchless `(v >= lo) & (v <= hi)` accumulation into a
    /// per-chunk bitmask, and surviving bits are emitted lowest-first. The
    /// per-point predicate is exactly [`Rect::contains`]'s comparison chain
    /// — pure comparisons, no float arithmetic — so the emitted set and
    /// order match the historical row-major filter bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if the rect's dimensionality disagrees with the view's or the
    /// range is out of bounds.
    pub fn scan_rect_into(&self, rect: &Rect, start: usize, end: usize, out: &mut Vec<u32>) {
        assert_eq!(rect.dims(), self.dims(), "query dimensionality mismatch");
        assert!(start <= end && end <= self.len(), "row range out of bounds");
        let mut base = start;
        while base < end {
            let chunk = (end - base).min(KERNEL_CHUNK);
            let mut mask = self.chunk_mask(rect, base, chunk);
            while mask != 0 {
                let j = mask.trailing_zeros() as usize;
                out.push((base + j) as u32);
                mask &= mask - 1;
            }
            base += chunk;
        }
    }

    /// Counting twin of [`NumericView::scan_rect_into`]: number of rows in
    /// `[start, end)` inside `rect`, without materializing indices.
    pub fn count_rect(&self, rect: &Rect, start: usize, end: usize) -> usize {
        assert_eq!(rect.dims(), self.dims(), "query dimensionality mismatch");
        assert!(start <= end && end <= self.len(), "row range out of bounds");
        let mut count = 0usize;
        let mut base = start;
        while base < end {
            let chunk = (end - base).min(KERNEL_CHUNK);
            count += self.chunk_mask(rect, base, chunk).count_ones() as usize;
            base += chunk;
        }
        count
    }

    /// Containment bitmask of the `chunk` rows starting at `base`: bit `j`
    /// set iff row `base + j` lies inside `rect`.
    #[inline]
    fn chunk_mask(&self, rect: &Rect, base: usize, chunk: usize) -> u64 {
        debug_assert!(chunk >= 1 && chunk <= KERNEL_CHUNK);
        let mut mask = if chunk == KERNEL_CHUNK {
            u64::MAX
        } else {
            (1u64 << chunk) - 1
        };
        for (d, lane) in self.lanes.iter().enumerate() {
            let (lo, hi) = (rect.lo(d), rect.hi(d));
            let seg = &lane[base..base + chunk];
            let mut m = 0u64;
            for (j, &v) in seg.iter().enumerate() {
                m |= (((v >= lo) & (v <= hi)) as u64) << j;
            }
            mask &= m;
            if mask == 0 {
                break;
            }
        }
        mask
    }

    /// Whether point `i` lies inside `rect`, evaluated branch-free across
    /// dimensions. Identical predicate to [`Rect::contains`] on the
    /// gathered point.
    #[inline]
    pub fn contains_index(&self, rect: &Rect, i: usize) -> bool {
        debug_assert_eq!(rect.dims(), self.dims(), "query dimensionality mismatch");
        let mut ok = true;
        for (d, lane) in self.lanes.iter().enumerate() {
            let v = lane[i];
            ok &= (v >= rect.lo(d)) & (v <= rect.hi(d));
        }
        ok
    }

    /// Scattered-candidate form of the kernel: appends to `out` the
    /// members of `candidates` lying inside `rect`, **preserving candidate
    /// order** (the k-d leaf sweep and the grid cell sweep rely on their
    /// bucket order surviving the filter).
    pub fn filter_indices_into(&self, rect: &Rect, candidates: &[u32], out: &mut Vec<u32>) {
        assert_eq!(rect.dims(), self.dims(), "query dimensionality mismatch");
        out.extend(
            candidates
                .iter()
                .copied()
                .filter(|&i| self.contains_index(rect, i as usize)),
        );
    }

    /// Counting twin of [`NumericView::filter_indices_into`].
    pub fn count_indices(&self, rect: &Rect, candidates: &[u32]) -> usize {
        assert_eq!(rect.dims(), self.dims(), "query dimensionality mismatch");
        candidates
            .iter()
            .filter(|&&i| self.contains_index(rect, i as usize))
            .count()
    }

    /// Indices of all points inside `rect`, in ascending order.
    pub fn indices_in(&self, rect: &Rect) -> Vec<usize> {
        let mut out = Vec::new();
        self.scan_rect_into(rect, 0, self.len(), &mut out);
        out.into_iter().map(|i| i as usize).collect()
    }

    /// Counts points inside `rect` without materializing indices.
    pub fn count_in(&self, rect: &Rect) -> usize {
        self.count_rect(rect, 0, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_util::rng::{Rng, Xoshiro256pp};

    #[test]
    fn domain_normalization_round_trips() {
        let d = Domain::new(-50.0, 150.0);
        assert_eq!(d.normalize(-50.0), 0.0);
        assert_eq!(d.normalize(150.0), 100.0);
        assert_eq!(d.normalize(50.0), 50.0);
        // Clamping.
        assert_eq!(d.normalize(-100.0), 0.0);
        assert_eq!(d.normalize(1000.0), 100.0);
        // Round trip.
        let raw = 37.25;
        assert!((d.denormalize(d.normalize(raw)) - raw).abs() < 1e-9);
    }

    #[test]
    fn hoisted_width_is_value_identical_to_recomputed_width() {
        // The hoisted `width` field must not shift normalization by even
        // an ulp: it stores exactly `hi - lo`, the same expression the
        // old code evaluated per call.
        for (lo, hi) in [(-50.0, 150.0), (0.3, 0.7), (1e-12, 3e12), (-7.5, -7.1)] {
            let d = Domain::new(lo, hi);
            assert_eq!(d.width().to_bits(), (hi - lo).to_bits());
            for t in [lo, hi, 0.0, 0.123456789, hi * 0.731] {
                let want = (100.0 * (t - lo) / (hi - lo)).clamp(0.0, 100.0);
                assert_eq!(d.normalize(t).to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn zero_width_domain_is_constant() {
        let d = Domain::new(5.0, 5.0);
        assert_eq!(d.normalize(5.0), 0.0);
        assert_eq!(d.normalize(99.0), 0.0);
        assert_eq!(d.denormalize(0.0), 5.0);
    }

    fn mapper2() -> SpaceMapper {
        SpaceMapper::new(
            vec!["age".into(), "dosage".into()],
            vec![Domain::new(0.0, 40.0), Domain::new(0.0, 15.0)],
        )
    }

    #[test]
    fn mapper_point_and_rect_round_trip() {
        let m = mapper2();
        let raw = vec![20.0, 7.5];
        let norm = m.normalize_point(&raw);
        assert_eq!(norm, vec![50.0, 50.0]);
        assert_eq!(m.denormalize_point(&norm), raw);

        let r = Rect::new(vec![25.0, 0.0], vec![50.0, 100.0]);
        let raw_r = m.denormalize_rect(&r);
        assert_eq!(raw_r, Rect::new(vec![10.0, 0.0], vec![20.0, 15.0]));
        assert_eq!(m.normalize_rect(&raw_r), r);
    }

    #[test]
    fn view_points_and_rect_queries() {
        let m = mapper2();
        // Three normalized points.
        let data = vec![10.0, 10.0, 50.0, 50.0, 90.0, 90.0];
        let view = NumericView::new(m, data, vec![0, 1, 2]);
        assert_eq!(view.len(), 3);
        assert_eq!(view.dims(), 2);
        assert_eq!(view.point_vec(1), vec![50.0, 50.0]);
        assert_eq!(view.coord(1, 1), 50.0);
        assert_eq!(view.row_id(2), 2);
        let rect = Rect::new(vec![0.0, 0.0], vec![60.0, 60.0]);
        assert_eq!(view.indices_in(&rect), vec![0, 1]);
        assert_eq!(view.count_in(&rect), 2);
    }

    #[test]
    fn row_major_and_lane_constructors_agree() {
        let m = mapper2();
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let by_rows = NumericView::new(m.clone(), data, vec![7, 8, 9]);
        let by_lanes = NumericView::from_lanes(
            m,
            vec![vec![1.0, 3.0, 5.0], vec![2.0, 4.0, 6.0]],
            vec![7, 8, 9],
        );
        assert_eq!(by_rows, by_lanes);
        assert_eq!(by_rows.lane(0), &[1.0, 3.0, 5.0]);
        let mut buf = vec![0.0; 2];
        by_rows.fill_point(2, &mut buf);
        assert_eq!(buf, vec![5.0, 6.0]);
        let mut pushed = vec![9.9];
        by_rows.push_point_into(0, &mut pushed);
        assert_eq!(pushed, vec![9.9, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "ragged point buffer")]
    fn ragged_buffer_panics() {
        NumericView::new(mapper2(), vec![1.0, 2.0, 3.0], vec![0]);
    }

    #[test]
    #[should_panic(expected = "row id count mismatch")]
    fn ragged_lanes_panic() {
        NumericView::from_lanes(mapper2(), vec![vec![1.0, 2.0], vec![3.0]], vec![0, 1]);
    }

    /// Row-major reference filter: what `indices_in` did before the
    /// columnar kernel existed.
    fn reference_filter(view: &NumericView, rect: &Rect) -> Vec<u32> {
        (0..view.len())
            .filter(|&i| rect.contains(&view.point_vec(i)))
            .map(|i| i as u32)
            .collect()
    }

    #[test]
    fn kernel_matches_reference_filter_across_chunk_boundaries() {
        // Lengths straddling the 64-row chunk width, including 0 and 1.
        for n in [0usize, 1, 3, 63, 64, 65, 127, 128, 130, 257] {
            for dims in [1usize, 2, 5] {
                let mut rng = Xoshiro256pp::seed_from_u64((n * 31 + dims) as u64);
                let mapper = SpaceMapper::new(
                    (0..dims).map(|d| format!("a{d}")).collect(),
                    vec![Domain::new(0.0, 100.0); dims],
                );
                let data: Vec<f64> = (0..n * dims).map(|_| rng.uniform(0.0, 100.0)).collect();
                let view = NumericView::new(mapper, data, (0..n as u32).collect());
                for rect in [
                    Rect::new(vec![20.0; dims], vec![70.0; dims]),
                    Rect::full_domain(dims),
                    Rect::new(vec![99.0; dims], vec![99.0; dims]),
                ] {
                    let want = reference_filter(&view, &rect);
                    let mut got = Vec::new();
                    view.scan_rect_into(&rect, 0, n, &mut got);
                    assert_eq!(got, want, "n={n} dims={dims}");
                    assert_eq!(view.count_rect(&rect, 0, n), want.len());
                    // Sub-ranges agree with the reference restricted to them.
                    let (start, end) = (n / 3, n - n / 4);
                    let mut part = Vec::new();
                    view.scan_rect_into(&rect, start, end, &mut part);
                    let want_part: Vec<u32> = want
                        .iter()
                        .copied()
                        .filter(|&i| (i as usize) >= start && (i as usize) < end)
                        .collect();
                    assert_eq!(part, want_part, "n={n} dims={dims} range");
                    assert_eq!(view.count_rect(&rect, start, end), want_part.len());
                }
            }
        }
    }

    #[test]
    fn filter_indices_preserves_candidate_order() {
        let mapper = SpaceMapper::new(vec!["x".into()], vec![Domain::new(0.0, 100.0)]);
        let data = vec![5.0, 15.0, 25.0, 35.0, 45.0];
        let view = NumericView::new(mapper, data, (0..5).collect());
        let rect = Rect::new(vec![10.0], vec![40.0]);
        // Shuffled candidate order must survive the filter untouched.
        let candidates = vec![4u32, 1, 3, 0, 2];
        let mut out = Vec::new();
        view.filter_indices_into(&rect, &candidates, &mut out);
        assert_eq!(out, vec![1, 3, 2]);
        assert_eq!(view.count_indices(&rect, &candidates), 3);
        assert!(view.contains_index(&rect, 2));
        assert!(!view.contains_index(&rect, 4));
    }

    #[test]
    fn append_rows_extends_lanes_in_place() {
        let m = mapper2();
        let mut view = NumericView::new(m.clone(), vec![1.0, 2.0], vec![0]);
        view.append_rows(&[3.0, 4.0, 5.0, 6.0], &[1, 2]);
        assert_eq!(view.len(), 3);
        assert_eq!(view.lane(0), &[1.0, 3.0, 5.0]);
        assert_eq!(view.lane(1), &[2.0, 4.0, 6.0]);
        assert_eq!(view.row_ids(), &[0, 1, 2]);
        // Appending is equivalent to constructing the whole view at once.
        let whole = NumericView::new(m, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![0, 1, 2]);
        assert_eq!(view, whole);
    }

    #[test]
    fn partition_covers_rows_in_order_without_overlap() {
        let m = mapper2();
        let n = 23usize;
        let data: Vec<f64> = (0..n * 2).map(|i| i as f64).collect();
        let row_ids: Vec<u32> = (100..100 + n as u32).collect();
        let view = NumericView::new(m, data, row_ids);
        for n_shards in [1, 2, 3, 4, 7, 23, 40] {
            let shards = view.partition(n_shards);
            assert_eq!(shards.len(), n_shards);
            // Concatenated shards reproduce the original view exactly.
            let mut global = 0usize;
            for (s, shard) in shards.iter().enumerate() {
                let (start, end) = NumericView::shard_bounds(n, n_shards, s);
                assert_eq!(shard.len(), end - start, "{n_shards} shards, shard {s}");
                assert_eq!(global, start);
                for i in 0..shard.len() {
                    assert_eq!(shard.row_id(i), view.row_id(global));
                    assert_eq!(shard.point_vec(i), view.point_vec(global));
                    global += 1;
                }
            }
            assert_eq!(global, n, "{n_shards} shards lost rows");
        }
    }

    #[test]
    fn shard_bounds_are_pure_in_len_and_count() {
        // Adjacent shards tile [0, len) exactly.
        for len in [0usize, 1, 5, 100, 101] {
            for n in [1usize, 2, 3, 8] {
                let mut prev_end = 0;
                for s in 0..n {
                    let (start, end) = NumericView::shard_bounds(len, n, s);
                    assert_eq!(start, prev_end);
                    assert!(end >= start);
                    prev_end = end;
                }
                assert_eq!(prev_end, len);
            }
        }
    }
}

//! Shared machinery for the experiment drivers: workload construction,
//! multi-seed session sweeps and aggregate reporting.
//!
//! The paper reports averages over ten exploration sessions per data point
//! (§6.1); [`run_sweep`] reproduces that protocol with a configurable
//! session count so quick runs stay quick.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use aide_core::baseline::run_random;
use aide_core::{
    ExplorationSession, SessionConfig, SessionResult, SizeClass, StopCondition, TargetQuery,
};
use aide_data::view::{Domain, SpaceMapper};
use aide_data::{load_view, sdss_like, write_view, NumericView, Table};
use aide_index::{ExtractionEngine, IndexKind};
use aide_util::rng::{Rng, SeedStream, Xoshiro256pp};
use aide_util::stats::OnlineStats;

/// Global options for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpOptions {
    /// Rows in the base synthetic dataset (100 k stands in for the
    /// paper's 10 GB / 3 M-tuple database).
    pub rows: usize,
    /// Exploration sessions averaged per data point (paper uses 10).
    pub sessions: u64,
    /// Root seed for the whole experiment.
    pub seed: u64,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            rows: 100_000,
            sessions: 5,
            seed: 1,
        }
    }
}

/// The SDSS-like base table for an experiment.
pub fn sdss_table(rows: usize, seed: u64) -> Table {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x5D55);
    sdss_like(rows).generate(&mut rng)
}

/// The default dense 2-D exploration view (`rowc`, `colc`), as used by
/// most of the paper's experiments.
pub fn dense_view(table: &Table) -> NumericView {
    table
        .numeric_view(&["rowc", "colc"])
        .expect("SDSS-like table has rowc/colc")
}

/// A view over the first `dims` of the paper's exploration attributes
/// (`rowc, colc, ra, field, dec`), for the dimensionality experiments.
pub fn multi_dim_view(table: &Table, dims: usize) -> NumericView {
    let attrs = ["rowc", "colc", "ra", "field", "dec"];
    assert!((2..=5).contains(&dims), "paper explores 2-D to 5-D");
    table
        .numeric_view(&attrs[..dims])
        .expect("SDSS-like exploration attributes")
}

/// A `dims`-D uniform view built lane-by-lane — no `Table` detour, so
/// multi-million-row substrates cost only the lanes themselves (a 10 M-row
/// 2-D view is ~160 MB of `f64` instead of the ~1.6 GB a full SDSS-like
/// `Table` of boxed values would take). Deterministic in `(n, dims, seed)`.
pub fn uniform_lanes_view(n: usize, dims: usize, seed: u64) -> NumericView {
    let mapper = SpaceMapper::new(
        (0..dims).map(|d| format!("a{d}")).collect(),
        vec![Domain::new(0.0, 100.0); dims],
    );
    let lanes: Vec<Vec<f64>> = (0..dims)
        .map(|d| {
            let mut rng = Xoshiro256pp::seed_from_u64(seed ^ ((d as u64 + 1) * 0xA1DE_5EED));
            (0..n).map(|_| rng.uniform(0.0, 100.0)).collect()
        })
        .collect();
    NumericView::from_lanes(mapper, lanes, (0..n as u32).collect())
}

/// [`uniform_lanes_view`] cached as an `aide-view/1` file: loads `path`
/// when it already holds a matching dataset, otherwise generates the view
/// and writes it there first. Scale benches call this so repeated runs
/// stream the dataset from disk instead of regenerating it.
pub fn cached_uniform_view(path: &Path, n: usize, dims: usize, seed: u64) -> NumericView {
    if let Ok(view) = load_view(path) {
        if view.len() == n && view.dims() == dims {
            return view;
        }
    }
    let view = uniform_lanes_view(n, dims, seed);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create dataset cache directory");
    }
    write_view(&view, path).expect("write dataset cache");
    view
}

/// One workload instance: a target plus the per-session seed.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The ground-truth target query.
    pub target: TargetQuery,
    /// Per-session RNG.
    pub rng: Xoshiro256pp,
}

/// Generates the per-session workloads for a sweep: each session gets an
/// independently placed target (anchored on data) and an independent RNG.
pub fn workloads(
    view: &NumericView,
    areas: usize,
    size: SizeClass,
    relevant_dims: usize,
    options: &ExpOptions,
    salt: u64,
) -> Vec<Workload> {
    let stream = SeedStream::new(options.seed.wrapping_add(salt.wrapping_mul(0x9E37)));
    (0..options.sessions)
        .map(|s| {
            let mut rng = stream.stream(s * 2);
            let target = TargetQuery::generate(view, areas, size, relevant_dims, &mut rng);
            Workload {
                target,
                rng: stream.stream(s * 2 + 1),
            }
        })
        .collect()
}

/// Like [`workloads`] but with *spread* targets (anchors uniform over the
/// space instead of over the data), the HalfSkew workload of §6.4.
pub fn workloads_spread(
    view: &NumericView,
    areas: usize,
    size: SizeClass,
    relevant_dims: usize,
    options: &ExpOptions,
    salt: u64,
) -> Vec<Workload> {
    let stream = SeedStream::new(options.seed.wrapping_add(salt.wrapping_mul(0x9E37)));
    (0..options.sessions)
        .map(|s| {
            let mut rng = stream.stream(s * 2);
            let target = TargetQuery::generate_spread(view, areas, size, relevant_dims, &mut rng);
            Workload {
                target,
                rng: stream.stream(s * 2 + 1),
            }
        })
        .collect()
}

/// Aggregates of a multi-session sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepStats {
    /// Labels needed to reach the sweep's accuracy threshold (only
    /// sessions that reached it).
    pub labels: OnlineStats,
    /// Final F-measure across sessions.
    pub final_f: OnlineStats,
    /// Mean per-iteration duration across sessions.
    pub iter_time: OnlineStats,
    /// Total system execution time across sessions.
    pub total_time: OnlineStats,
    /// Iterations executed.
    pub iterations: OnlineStats,
    /// Total extraction queries issued per session (the paper's sample-
    /// acquisition cost driver; our in-memory engine has no per-query
    /// startup cost, so query counts are the faithful cost proxy for the
    /// DBMS backend the paper ran on).
    pub queries: OnlineStats,
    /// Misclassified-phase extraction queries per session.
    pub misclass_queries: OnlineStats,
    /// Sessions that reached the threshold.
    pub reached: u64,
    /// Sessions run.
    pub total: u64,
}

impl SweepStats {
    /// Records one session's outcome against `threshold`.
    pub fn record(&mut self, result: &SessionResult, threshold: Option<f64>) {
        self.total += 1;
        self.final_f.push(result.final_f);
        self.iter_time
            .push(result.mean_iteration_time().as_secs_f64());
        self.total_time.push(result.total_time.as_secs_f64());
        self.iterations.push(result.iterations as f64);
        self.queries.push(
            result
                .history
                .iter()
                .map(|r| r.extraction.queries)
                .sum::<u64>() as f64,
        );
        self.misclass_queries.push(
            result
                .history
                .iter()
                .map(|r| r.misclass_queries)
                .sum::<u64>() as f64,
        );
        if let Some(t) = threshold {
            if let Some(labels) = result.labels_to_reach(t) {
                self.labels.push(labels as f64);
                self.reached += 1;
            }
        }
    }

    /// `mean ± std (reached/total)` for the labels column.
    pub fn labels_cell(&self) -> String {
        if self.reached == 0 {
            return format!("not reached (0/{})", self.total);
        }
        format!(
            "{:.0} ({}/{})",
            self.labels.mean(),
            self.reached,
            self.total
        )
    }
}

/// Sequential version of [`run_sweep`] for *timing* experiments: running
/// sessions on one thread keeps per-iteration latencies free of
/// scheduler contention.
pub fn run_sweep_timed(
    config: &SessionConfig,
    view: &Arc<NumericView>,
    workloads: &[Workload],
    stop: StopCondition,
    threshold: Option<f64>,
) -> SweepStats {
    run_sweep_on_seq(config, view, view, workloads, stop, threshold)
}

/// Sequential core used by the timing experiments.
pub fn run_sweep_on_seq(
    config: &SessionConfig,
    sample_view: &Arc<NumericView>,
    eval_view: &Arc<NumericView>,
    workloads: &[Workload],
    stop: StopCondition,
    threshold: Option<f64>,
) -> SweepStats {
    let mut stats = SweepStats::default();
    for w in workloads {
        let engine = ExtractionEngine::from_arc(Arc::clone(sample_view), IndexKind::Grid);
        let mut session = ExplorationSession::new(
            config.clone(),
            engine,
            Arc::clone(eval_view),
            w.target.clone(),
            w.rng.clone(),
        );
        let result = session.run(stop);
        stats.record(&result, threshold);
    }
    stats
}

/// Runs AIDE over every workload and aggregates.
pub fn run_sweep(
    config: &SessionConfig,
    view: &Arc<NumericView>,
    workloads: &[Workload],
    stop: StopCondition,
    threshold: Option<f64>,
) -> SweepStats {
    run_sweep_on(config, view, view, workloads, stop, threshold)
}

/// Like [`run_sweep`] but extracting samples from `sample_view` while
/// evaluating accuracy on `eval_view` — the sampled-dataset optimization
/// (§5.2): `sample_view` is a 10 % simple random sample of `eval_view`.
pub fn run_sweep_on(
    config: &SessionConfig,
    sample_view: &Arc<NumericView>,
    eval_view: &Arc<NumericView>,
    workloads: &[Workload],
    stop: StopCondition,
    threshold: Option<f64>,
) -> SweepStats {
    // Sessions are independent (each workload carries its own RNG), so
    // they run on scoped threads; results are recorded in workload order
    // to keep the aggregates deterministic.
    let results: Vec<SessionResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                scope.spawn(|| {
                    let engine =
                        ExtractionEngine::from_arc(Arc::clone(sample_view), IndexKind::Grid);
                    let mut session = ExplorationSession::new(
                        config.clone(),
                        engine,
                        Arc::clone(eval_view),
                        w.target.clone(),
                        w.rng.clone(),
                    );
                    session.run(stop)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread panicked"))
            .collect()
    });
    let mut stats = SweepStats::default();
    for result in &results {
        stats.record(result, threshold);
    }
    stats
}

/// Runs the *Random* baseline over every workload.
pub fn run_random_sweep(
    config: &SessionConfig,
    view: &Arc<NumericView>,
    workloads: &[Workload],
    stop: StopCondition,
    threshold: Option<f64>,
) -> SweepStats {
    let mut stats = SweepStats::default();
    for w in workloads {
        let engine = ExtractionEngine::from_arc(Arc::clone(view), IndexKind::Grid);
        let result = run_random(
            config,
            engine,
            Arc::clone(view),
            w.target.clone(),
            w.rng.clone(),
            stop,
        );
        stats.record(&result, threshold);
    }
    stats
}

/// Average labels needed to first reach each accuracy level, over the
/// sessions that got there. Returns `(level, mean labels, reached)` rows.
pub fn accuracy_ladder(
    results: &[SessionResult],
    levels: &[f64],
) -> Vec<(f64, Option<f64>, usize)> {
    levels
        .iter()
        .map(|&level| {
            let mut stats = OnlineStats::new();
            for r in results {
                if let Some(l) = r.labels_to_reach(level) {
                    stats.push(l as f64);
                }
            }
            let reached = stats.count() as usize;
            let mean = (reached > 0).then(|| stats.mean());
            (level, mean, reached)
        })
        .collect()
}

/// Runs AIDE over workloads, returning the raw per-session results (for
/// ladder-style reports).
pub fn collect_results(
    config: &SessionConfig,
    view: &Arc<NumericView>,
    workloads: &[Workload],
    stop: StopCondition,
) -> Vec<SessionResult> {
    workloads
        .iter()
        .map(|w| {
            let engine = ExtractionEngine::from_arc(Arc::clone(view), IndexKind::Grid);
            let mut session = ExplorationSession::new(
                config.clone(),
                engine,
                Arc::clone(view),
                w.target.clone(),
                w.rng.clone(),
            );
            session.run(stop)
        })
        .collect()
}

/// Builds the 10 % simple-random-sample replica view of a table's
/// projection, sharing the base view's domains so normalized coordinates
/// agree (§5.2).
pub fn sampled_replica(table: &Table, attrs: &[&str], fraction: f64, seed: u64) -> NumericView {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x5A3D_17EE);
    let domains = attrs
        .iter()
        .map(|a| table.domain(a).expect("numeric attribute"))
        .collect::<Vec<_>>();
    let sampled = table.sample_fraction(fraction, &mut rng);
    sampled
        .numeric_view_with_domains(attrs, domains)
        .expect("sampled replica shares the schema")
}

/// Formats a `Duration` mean in milliseconds.
pub fn ms(seconds: f64) -> String {
    format!("{:.1} ms", seconds * 1e3)
}

/// Formats a duration value.
pub fn dur(d: Duration) -> String {
    format!("{:.1} ms", d.as_secs_f64() * 1e3)
}

/// Simple percent formatting.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

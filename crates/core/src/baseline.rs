//! Baseline explorers (paper §6.2, Figure 8(d,e)).
//!
//! * [`run_random`] — *Random*: each iteration shows the user a batch of
//!   uniformly random samples, then retrains the classifier;
//! * [`random_grid_config`] — *Random-Grid*: random sample selection on
//!   the exploration grid (one sample near each cell center). This equals
//!   AIDE with only the object-discovery phase enabled, which is exactly
//!   how the paper uses it in the Figure 8(f) ablation;
//! * [`random_grid_misclass_config`] — *Random-Grid + Misclassified*, the
//!   middle rung of the ablation;
//! * [`run_uncertainty`] — classical pool-based *uncertainty sampling*
//!   (§7 Related Work): each round scores a candidate pool by distance to
//!   the current decision boundary and asks the user about the most
//!   uncertain objects. The paper argues such techniques "exhaustively
//!   examine all objects in the data set" and so "cannot offer
//!   interactive performance on big data sets" — this baseline lets the
//!   `ext-uncertainty` experiment test that claim quantitatively.

use std::sync::Arc;

use aide_data::NumericView;
use aide_index::ExtractionEngine;
use aide_ml::DecisionTree;
use aide_util::geom::Rect;
use aide_util::rng::Xoshiro256pp;

use crate::config::{PhaseToggles, SessionConfig, StopCondition};
use crate::eval::evaluate_model;
use crate::labeled::LabeledSet;
use crate::session::{IterationReport, SessionResult};
use crate::target::{SimulatedUser, TargetQuery};

/// AIDE configured as the *Random-Grid* baseline: grid-based object
/// discovery only.
pub fn random_grid_config(base: &SessionConfig) -> SessionConfig {
    SessionConfig {
        phases: PhaseToggles {
            discovery: true,
            misclassified: false,
            boundary: false,
        },
        ..base.clone()
    }
}

/// AIDE with the misclassified-exploitation phase added to Random-Grid
/// (the middle variant of the Figure 8(f) ablation).
pub fn random_grid_misclass_config(base: &SessionConfig) -> SessionConfig {
    SessionConfig {
        phases: PhaseToggles {
            discovery: true,
            misclassified: true,
            boundary: false,
        },
        ..base.clone()
    }
}

/// Runs the *Random* baseline: `samples_per_iteration` uniformly random
/// samples per iteration, classifier retrained on all labels, accuracy
/// evaluated over `eval_view` — the same loop as AIDE with the strategic
/// sample selection replaced by blind random selection.
pub fn run_random(
    config: &SessionConfig,
    mut engine: ExtractionEngine,
    eval_view: Arc<NumericView>,
    target: TargetQuery,
    mut rng: Xoshiro256pp,
    stop: StopCondition,
) -> SessionResult {
    let dims = eval_view.dims();
    let full = Rect::full_domain(dims);
    let mut user = SimulatedUser::new(target);
    let mut labeled = LabeledSet::new(dims);
    let mut tree: Option<DecisionTree> = None;
    let mut history: Vec<IterationReport> = Vec::new();
    let mut last_f = (0.0, 0.0, 0.0);
    let mut stalled = 0usize;

    for iteration in 0..stop.max_iterations {
        let start = std::time::Instant::now();
        engine.reset_stats();
        let samples = engine.sample_in_excluding(
            &full,
            config.samples_per_iteration,
            &mut rng,
            labeled.seen_rows(),
        );
        let mut new_samples = 0usize;
        for s in &samples {
            let label = user.label(&s.point);
            if labeled.push(s, label) {
                new_samples += 1;
            }
        }
        if labeled.has_both_classes() {
            tree = Some(DecisionTree::fit(
                dims,
                labeled.data(),
                labeled.labels(),
                &config.tree,
            ));
        }
        if iteration % config.eval_every.max(1) == 0 || new_samples == 0 {
            let m = evaluate_model(tree.as_ref(), &eval_view, user.target());
            last_f = (m.f_measure(), m.precision(), m.recall());
        }
        let num_regions = tree
            .as_ref()
            .map(|t| t.relevant_regions(&full).len())
            .unwrap_or(0);
        history.push(IterationReport {
            iteration,
            new_samples,
            discovery_samples: new_samples,
            misclass_samples: 0,
            boundary_samples: 0,
            total_labeled: labeled.len(),
            relevant_labeled: labeled.relevant_count(),
            f_measure: last_f.0,
            precision: last_f.1,
            recall: last_f.2,
            num_regions,
            duration: start.elapsed(),
            extraction: engine.stats(),
            misclass_queries: 0,
            boundary_queries: 0,
        });
        stalled = if new_samples == 0 { stalled + 1 } else { 0 };
        if stop.target_f.is_some_and(|t| last_f.0 >= t)
            || stop.max_labels.is_some_and(|m| labeled.len() >= m)
            || stalled >= 3
        {
            break;
        }
    }
    let total_time = history.iter().map(|r| r.duration).sum();
    SessionResult {
        final_f: last_f.0,
        total_labeled: labeled.len(),
        iterations: history.len(),
        total_time,
        shards: engine.shard_count(),
        history,
    }
}

/// Distance from a point to the boundary of the predicted relevant set:
/// 0 on a face, growing inward and outward. Low distance = model is least
/// certain there (the L∞ margin of the rectangle union).
fn boundary_distance(point: &[f64], regions: &[Rect]) -> f64 {
    regions
        .iter()
        .map(|r| {
            let mut outside: f64 = 0.0; // L∞ distance to the rect if outside
            let mut inside = f64::INFINITY; // distance to the nearest face if inside
            for (d, &x) in point.iter().enumerate() {
                let below = r.lo(d) - x;
                let above = x - r.hi(d);
                outside = outside.max(below.max(above).max(0.0));
                inside = inside.min((x - r.lo(d)).min(r.hi(d) - x));
            }
            if outside > 0.0 {
                outside
            } else {
                inside.max(0.0)
            }
        })
        .fold(f64::INFINITY, f64::min)
}

/// Runs pool-based uncertainty sampling: each iteration scores
/// `pool_size` random candidates (the whole view when `None` — the
/// "exhaustive" form the paper's related-work section describes) by
/// [`boundary_distance`] and labels the most uncertain
/// `samples_per_iteration` of them. Before any model exists the batch is
/// random.
#[allow(clippy::too_many_arguments)]
pub fn run_uncertainty(
    config: &SessionConfig,
    mut engine: ExtractionEngine,
    eval_view: Arc<NumericView>,
    target: TargetQuery,
    mut rng: Xoshiro256pp,
    stop: StopCondition,
    pool_size: Option<usize>,
) -> SessionResult {
    let dims = eval_view.dims();
    let full = Rect::full_domain(dims);
    let mut user = SimulatedUser::new(target);
    let mut labeled = LabeledSet::new(dims);
    let mut tree: Option<DecisionTree> = None;
    let mut history: Vec<IterationReport> = Vec::new();
    let mut last_f = (0.0, 0.0, 0.0);
    let mut stalled = 0usize;

    for iteration in 0..stop.max_iterations {
        let start = std::time::Instant::now();
        engine.reset_stats();
        let batch = config.samples_per_iteration;
        let regions = tree
            .as_ref()
            .map(|t| t.relevant_regions(&full))
            .unwrap_or_default();
        let samples = if regions.is_empty() {
            engine.sample_in_excluding(&full, batch, &mut rng, labeled.seen_rows())
        } else {
            // Score the candidate pool and keep the most uncertain batch.
            let pool = pool_size.unwrap_or(usize::MAX);
            let mut candidates =
                engine.sample_in_excluding(&full, pool, &mut rng, labeled.seen_rows());
            candidates.sort_by(|a, b| {
                boundary_distance(&a.point, &regions)
                    .partial_cmp(&boundary_distance(&b.point, &regions))
                    .expect("finite distances")
            });
            candidates.truncate(batch);
            candidates
        };
        let mut new_samples = 0usize;
        for s in &samples {
            let label = user.label(&s.point);
            if labeled.push(s, label) {
                new_samples += 1;
            }
        }
        if labeled.has_both_classes() {
            tree = Some(DecisionTree::fit(
                dims,
                labeled.data(),
                labeled.labels(),
                &config.tree,
            ));
        }
        if iteration.is_multiple_of(config.eval_every.max(1)) || new_samples == 0 {
            let m = evaluate_model(tree.as_ref(), &eval_view, user.target());
            last_f = (m.f_measure(), m.precision(), m.recall());
        }
        let num_regions = tree
            .as_ref()
            .map(|t| t.relevant_regions(&full).len())
            .unwrap_or(0);
        history.push(IterationReport {
            iteration,
            new_samples,
            discovery_samples: new_samples,
            misclass_samples: 0,
            boundary_samples: 0,
            total_labeled: labeled.len(),
            relevant_labeled: labeled.relevant_count(),
            f_measure: last_f.0,
            precision: last_f.1,
            recall: last_f.2,
            num_regions,
            duration: start.elapsed(),
            extraction: engine.stats(),
            misclass_queries: 0,
            boundary_queries: 0,
        });
        stalled = if new_samples == 0 { stalled + 1 } else { 0 };
        if stop.target_f.is_some_and(|t| last_f.0 >= t)
            || stop.max_labels.is_some_and(|m| labeled.len() >= m)
            || stalled >= 3
        {
            break;
        }
    }
    let total_time = history.iter().map(|r| r.duration).sum();
    SessionResult {
        final_f: last_f.0,
        total_labeled: labeled.len(),
        iterations: history.len(),
        total_time,
        shards: engine.shard_count(),
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ExplorationSession;
    use aide_data::view::{Domain, SpaceMapper};
    use aide_index::IndexKind;
    use aide_util::rng::Rng;

    fn uniform_view(n: usize, seed: u64) -> NumericView {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mapper = SpaceMapper::new(
            vec!["x".into(), "y".into()],
            vec![Domain::new(0.0, 100.0); 2],
        );
        let data: Vec<f64> = (0..n * 2).map(|_| rng.uniform(0.0, 100.0)).collect();
        NumericView::new(mapper, data, (0..n as u32).collect())
    }

    fn target() -> TargetQuery {
        TargetQuery::new(vec![Rect::new(vec![40.0, 55.0], vec![48.0, 63.0])])
    }

    #[test]
    fn random_baseline_makes_some_progress_eventually() {
        let view = Arc::new(uniform_view(20_000, 1));
        let engine = ExtractionEngine::from_arc(Arc::clone(&view), IndexKind::Grid);
        let result = run_random(
            &SessionConfig::default(),
            engine,
            view,
            target(),
            Xoshiro256pp::seed_from_u64(2),
            StopCondition {
                target_f: Some(0.5),
                max_labels: Some(2_000),
                max_iterations: 100,
            },
        );
        // With enough random labels a large area is eventually learnable.
        assert!(result.total_labeled > 0);
        assert!(result.history.len() == result.iterations);
    }

    #[test]
    fn aide_beats_random_on_label_efficiency() {
        // The paper's headline comparison (Fig 8d): labels to reach 70 %.
        let view = Arc::new(uniform_view(20_000, 3));
        let stop = StopCondition {
            target_f: Some(0.7),
            max_labels: Some(1_500),
            max_iterations: 120,
        };
        let engine = ExtractionEngine::from_arc(Arc::clone(&view), IndexKind::Grid);
        let random = run_random(
            &SessionConfig::default(),
            engine,
            Arc::clone(&view),
            target(),
            Xoshiro256pp::seed_from_u64(4),
            stop,
        );
        let mut aide = ExplorationSession::from_view(
            SessionConfig::default(),
            uniform_view(20_000, 3),
            target(),
            4,
        );
        let aide_result = aide.run(stop);
        let aide_labels = aide_result
            .labels_to_reach(0.7)
            .unwrap_or(aide_result.total_labeled + 10_000);
        let random_labels = random
            .labels_to_reach(0.7)
            .unwrap_or(random.total_labeled + 10_000);
        assert!(
            aide_labels < random_labels,
            "AIDE {aide_labels} labels vs Random {random_labels}"
        );
    }

    #[test]
    fn boundary_distance_is_a_margin() {
        let regions = vec![Rect::new(vec![40.0, 40.0], vec![50.0, 50.0])];
        // On a face: zero.
        assert_eq!(boundary_distance(&[40.0, 45.0], &regions), 0.0);
        // Inside: distance to the nearest face.
        assert_eq!(boundary_distance(&[44.0, 45.0], &regions), 4.0);
        // Outside: L-infinity distance to the rect.
        assert_eq!(boundary_distance(&[60.0, 45.0], &regions), 10.0);
        assert_eq!(boundary_distance(&[60.0, 60.0], &regions), 10.0);
        // Multiple regions: the nearest wins.
        let two = vec![
            Rect::new(vec![40.0, 40.0], vec![50.0, 50.0]),
            Rect::new(vec![0.0, 0.0], vec![4.0, 4.0]),
        ];
        assert_eq!(boundary_distance(&[5.0, 2.0], &two), 1.0);
    }

    #[test]
    fn uncertainty_sampling_learns_but_scans_the_pool() {
        let view = Arc::new(uniform_view(20_000, 5));
        let engine = ExtractionEngine::from_arc(Arc::clone(&view), IndexKind::Grid);
        let stop = StopCondition {
            target_f: Some(0.7),
            max_labels: Some(2_000),
            max_iterations: 150,
        };
        let result = run_uncertainty(
            &SessionConfig::default(),
            engine,
            Arc::clone(&view),
            target(),
            Xoshiro256pp::seed_from_u64(6),
            stop,
            None, // exhaustive pool, as the paper's related work describes
        );
        // Once the area is found, boundary-focused batches refine it.
        assert!(result.total_labeled > 0);
        // The exhaustive pool means every modeled iteration returned the
        // whole view from the extraction engine.
        let scanned: u64 = result
            .history
            .iter()
            .map(|r| r.extraction.tuples_returned)
            .sum();
        assert!(
            scanned >= (view.len() as u64) * (result.iterations as u64 / 2),
            "pool scans too small: {scanned}"
        );
    }

    #[test]
    fn ablation_configs_toggle_phases() {
        let base = SessionConfig::default();
        let grid = random_grid_config(&base);
        assert!(grid.phases.discovery);
        assert!(!grid.phases.misclassified);
        assert!(!grid.phases.boundary);
        let mid = random_grid_misclass_config(&base);
        assert!(mid.phases.misclassified);
        assert!(!mid.phases.boundary);
    }
}

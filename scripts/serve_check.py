#!/usr/bin/env python3
"""Exercise a live ``aide serve`` endpoint over the ``aide-serve/1`` protocol.

A stdlib-only reference client for the wire protocol specified in
``PROTOCOL.md``: newline-delimited JSON over TCP, one request object per
line, one response object per line, a hello frame on connect.

Default run (``serve_check.py HOST:PORT``): drives two interleaved
sessions end to end — ``create`` with a fixed seed and a normalized
target rectangle, several ``label`` rounds with client-side labeling by
target membership, then ``result``, ``stats`` (asserting the shared
region cache shows cross-session hits) and ``close``. Exit 0 when every
exchange matches the protocol contract, exit 1 with a diagnostic
otherwise.

Self-test
---------

``--self-test HOST:PORT`` additionally fires the corruption cases of the
protocol's error table at the live server — bad JSON, missing/unsupported
version, unknown op, missing session, label-count mismatch, an oversized
frame, and a truncated frame dropped mid-line — asserting each draws the
documented typed error (or a clean close) and that the server keeps
serving afterwards. CI runs this against a freshly booted server so a
protocol regression cannot slip through unexercised.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys

PROTOCOL = "aide-serve/1"
TARGET = {"lo": [40.0, 55.0], "hi": [48.0, 63.0]}
MAX_FRAME = 1 << 20


class ProtocolError(Exception):
    pass


class Client:
    """One connection: line-framed JSON requests, hello consumed eagerly."""

    def __init__(self, host: str, port: int):
        self.sock = socket.create_connection((host, port), timeout=30)
        self.reader = self.sock.makefile("rb")
        self.hello = self._read_frame()
        if self.hello.get("hello") != PROTOCOL:
            raise ProtocolError(f"unexpected hello frame: {self.hello}")

    def _read_frame(self) -> dict:
        line = self.reader.readline()
        if not line:
            raise ProtocolError("connection closed mid-exchange")
        try:
            frame = json.loads(line)
        except json.JSONDecodeError as e:
            raise ProtocolError(f"response is not JSON: {e}") from None
        if not isinstance(frame, dict):
            raise ProtocolError(f"response is not an object: {frame!r}")
        return frame

    def send_raw(self, payload: bytes):
        self.sock.sendall(payload)

    def request(self, body: dict) -> dict:
        body = {"v": 1, **body}
        self.send_raw(json.dumps(body).encode() + b"\n")
        return self._read_frame()

    def expect_ok(self, body: dict) -> dict:
        reply = self.request(body)
        if reply.get("ok") is not True:
            raise ProtocolError(f"request {body} failed: {reply}")
        return reply

    def expect_error(self, body: dict, code: str) -> dict:
        reply = self.request(body)
        if reply.get("ok") is not False or reply.get("error") != code:
            raise ProtocolError(f"request {body} should draw `{code}`, got: {reply}")
        return reply

    def close(self):
        try:
            self.reader.close()
        finally:
            self.sock.close()


def relevant(point) -> bool:
    """Client-side labeling: membership in the normalized target."""
    return all(
        lo <= c <= hi for c, lo, hi in zip(point, TARGET["lo"], TARGET["hi"])
    )


def label_round(conn: Client, session: int, proposals) -> dict:
    labels = [relevant(p["point"]) for p in proposals]
    reply = conn.expect_ok({"op": "label", "session": session, "labels": labels})
    for key in ("iter", "new_samples", "total_labeled", "proposals"):
        if key not in reply:
            raise ProtocolError(f"label response misses `{key}`: {reply}")
    return reply


def run_sessions(host: str, port: int, rounds: int) -> int:
    """Two interleaved sessions over two connections; returns exit code."""
    conn_a, conn_b = Client(host, port), Client(host, port)
    dims = conn_a.hello.get("dims")
    if dims != len(TARGET["lo"]):
        print(
            f"dataset has {dims} dims, the built-in target has {len(TARGET['lo'])} "
            "(serve a 2-lane view)",
            file=sys.stderr,
        )
        return 1
    create = {"op": "create", "batch": 10, "target": [TARGET]}
    a = conn_a.expect_ok({**create, "seed": 1001})
    b = conn_b.expect_ok({**create, "seed": 2002})
    sid_a, sid_b = a["session"], b["session"]
    if sid_a == sid_b:
        raise ProtocolError("two creates returned the same session id")
    props_a, props_b = a["proposals"], b["proposals"]
    for _ in range(rounds):
        reply_a = label_round(conn_a, sid_a, props_a)
        reply_b = label_round(conn_b, sid_b, props_b)
        props_a, props_b = reply_a["proposals"], reply_b["proposals"]

    for conn, sid in ((conn_a, sid_a), (conn_b, sid_b)):
        result = conn.expect_ok({"op": "result", "session": sid})
        for key in ("iterations", "total_labeled", "relevant", "regions", "sql"):
            if key not in result:
                raise ProtocolError(f"result misses `{key}`: {result}")
        if not result["sql"].startswith("SELECT"):
            raise ProtocolError(f"predicted query is not SQL: {result['sql']!r}")

    stats = conn_a.expect_ok({"op": "stats"})
    if stats.get("proto") != PROTOCOL:
        raise ProtocolError(f"stats reports wrong protocol: {stats}")
    if stats.get("sessions_active", 0) < 2:
        raise ProtocolError(f"expected 2 live sessions: {stats}")
    if stats.get("cache_hits", 0) <= 0:
        raise ProtocolError(f"shared region cache shows no hits: {stats}")

    traces = []
    for conn, sid in ((conn_a, sid_a), (conn_b, sid_b)):
        closed = conn.expect_ok({"op": "close", "session": sid})
        if "trace" in closed:
            traces.append(closed["trace"])
        conn.expect_error({"op": "result", "session": sid}, "no_session")
    conn_a.close()
    conn_b.close()
    print(
        f"ok: 2 sessions x {rounds} rounds, "
        f"{stats['cache_hits']} shared cache hits / {stats['cache_misses']} misses"
    )
    for t in traces:
        print(f"trace: {t}")
    return 0


def self_test(host: str, port: int) -> int:
    """Corruption cases against a live server, mirroring PROTOCOL.md's
    error table the way store_check.py mirrors the view format."""
    conn = Client(host, port)

    def raw_case(payload: bytes, code: str | None, label: str):
        """Sends raw bytes on a fresh connection; expects an error frame
        with `code` (None = server just closes)."""
        c = Client(host, port)
        c.send_raw(payload)
        if code is None:
            c.sock.shutdown(socket.SHUT_WR)
            rest = c.reader.read()
            if rest:
                raise ProtocolError(f"{label}: expected silent close, got {rest!r}")
        else:
            reply = c._read_frame()
            if reply.get("error") != code:
                raise ProtocolError(f"{label}: expected `{code}`, got {reply}")
        c.close()

    # Typed errors on a persistent connection.
    conn.expect_error({"op": "explode"}, "unknown_op")
    conn.expect_error({"op": "label", "session": 424242, "labels": []}, "no_session")
    conn.expect_error({"op": "create"}, "bad_request")
    conn.expect_error({"op": "create", "seed": 1, "batch": 0}, "bad_request")
    conn.expect_error(
        {"op": "create", "seed": 1, "target": [{"lo": [1.0], "hi": [2.0]}]},
        "bad_request",
    )

    # Version handling (raw frames bypass request()'s v:1 injection).
    conn.send_raw(b'{"op":"stats"}\n')
    if conn._read_frame().get("error") != "bad_version":
        raise ProtocolError("missing `v` must draw bad_version")
    conn.send_raw(b'{"v":99,"op":"stats"}\n')
    if conn._read_frame().get("error") != "bad_version":
        raise ProtocolError("v:99 must draw bad_version")

    # Label-count mismatch on a real session.
    created = conn.expect_ok(
        {"op": "create", "seed": 7, "batch": 5, "target": [TARGET]}
    )
    sid = created["session"]
    conn.expect_error({"op": "label", "session": sid, "labels": [True]}, "bad_labels")
    conn.expect_error(
        {"op": "label", "session": sid, "labels": [1, 2, 3]}, "bad_labels"
    )
    conn.expect_ok({"op": "close", "session": sid})

    # Framing violations on throwaway connections.
    raw_case(b"not json at all\n", "bad_json", "bad JSON")
    raw_case(b"x" * (MAX_FRAME + 64) + b"\n", "bad_frame", "oversized frame")
    raw_case(b'{"v":1,"op":"stats"', None, "truncated frame")

    # The server survived all of it.
    stats = conn.expect_ok({"op": "stats"})
    conn.close()
    print(
        f"self-test ok: protocol errors typed, framing bounded, "
        f"server healthy ({stats['sessions_created']} sessions created so far)"
    )
    return 0


def parse_addr(addr: str):
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(f"bad address `{addr}` (want HOST:PORT)")
    return host, int(port)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("addr", type=parse_addr, help="server address, HOST:PORT")
    ap.add_argument("--rounds", type=int, default=5, help="label rounds per session")
    ap.add_argument("--self-test", action="store_true",
                    help="fire the protocol corruption cases at the server")
    args = ap.parse_args()
    host, port = args.addr
    try:
        if args.self_test:
            sys.exit(self_test(host, port))
        sys.exit(run_sessions(host, port, args.rounds))
    except (ProtocolError, OSError) as e:
        print(f"FAILED: {e}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()

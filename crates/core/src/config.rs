//! Session configuration: every knob of the three exploration phases and
//! their optimizations (paper §3–§5).

use aide_ml::TreeParams;
use aide_util::geom::Rect;
use aide_util::trace::Tracer;

/// Which object-discovery strategy to run (paper §3, §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscoveryStrategy {
    /// Hierarchical equi-width exploration grid (the default).
    Grid,
    /// Skew-aware k-means cluster hierarchy (optimization of §3.1).
    Clustering,
    /// The hybrid strategy sketched in §6.4's discussion (paper future
    /// work): start with clustering to cover dense areas first, switch to
    /// the grid once the cluster hierarchy stops producing relevant
    /// objects — i.e. when the interests appear to lie in sparse areas.
    Hybrid,
}

/// Which phases are active — used for the Figure 8(f) ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseToggles {
    /// Relevant object discovery (§3).
    pub discovery: bool,
    /// Misclassified exploitation (§4).
    pub misclassified: bool,
    /// Boundary exploitation (§5).
    pub boundary: bool,
}

impl Default for PhaseToggles {
    fn default() -> Self {
        Self {
            discovery: true,
            misclassified: true,
            boundary: true,
        }
    }
}

/// Optional user hints (paper §3.1).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Hints {
    /// Minimum per-dimension width (normalized units) of any relevant
    /// area. Lets discovery start at the exploration level whose cell
    /// width δ is at most this value, guaranteeing every relevant area is
    /// "hit" on the first pass.
    pub min_area_width: Option<f64>,
    /// Restrict exploration to this normalized sub-rectangle
    /// (range-based hint: "clinical trials in years [2000, 2010]").
    pub range: Option<Rect>,
}

/// All tunables of an exploration session. Defaults follow the paper's
/// experimental setup where it is specified (20 samples per iteration,
/// x = 1, f in 10–25) and sensible mid-range values elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// New samples shown to the user per iteration (paper §6.2 uses 20).
    pub samples_per_iteration: usize,

    // --- Relevant object discovery (§3) ---------------------------------
    /// Which discovery strategy to use.
    pub discovery_strategy: DiscoveryStrategy,
    /// β: level-0 grid splits each normalized domain into β ranges; level
    /// ℓ uses β·2^ℓ (zooming halves the cell width, Figure 3).
    pub grid_beta: usize,
    /// Deepest exploration level cells may zoom into.
    pub max_exploration_level: usize,
    /// Number of clusters at level 0 of the clustering strategy; level ℓ
    /// uses `k0 · 2^ℓ` clusters.
    pub cluster_k0: usize,
    /// Cap on points used to fit the discovery k-means (fitting on a
    /// simple random subset preserves the cluster structure).
    pub cluster_fit_cap: usize,
    /// Base sampling radius around a cell center, as a fraction of the
    /// cell width δ (γ = `gamma_fraction`·δ, must stay below 0.5 so
    /// samples stay inside their cell).
    pub gamma_fraction: f64,
    /// Widen γ toward δ/2 in sparse cells (density-aware γ, §3).
    pub density_aware_gamma: bool,
    /// Hybrid strategy: minimum clustering proposals before the hit rate
    /// is judged.
    pub hybrid_switch_after: usize,
    /// Hybrid strategy: relevant-hit rate below which clustering is
    /// abandoned for the grid.
    pub hybrid_min_hit_rate: f64,
    /// User hints, if any.
    pub hints: Hints,

    // --- Misclassified exploitation (§4) --------------------------------
    /// f: samples collected around each false negative (paper: 10–25).
    pub misclass_f: usize,
    /// y: normalized sampling distance around a false negative / cluster.
    pub misclass_y: f64,
    /// Use the clustering-based optimization (one query per cluster of
    /// false negatives instead of one per object, §4.2).
    pub clustered_misclassified: bool,
    /// Adapt `y` to the width of the currently predicted relevant areas
    /// (the dynamic-y direction §4.2 leaves as future work). When the
    /// model has no areas yet the static `misclass_y` is used.
    pub adaptive_misclass_y: bool,
    /// Retire a false negative after this many misclassified-exploitation
    /// rounds have sampled around it without the model absorbing it.
    /// Under the paper's noise-free assumption (§2.1) every FN is real
    /// and this should stay `usize::MAX`; with noisy labels a flipped
    /// object stays a false negative forever and would otherwise hijack
    /// the phase's budget every iteration (see `repro ext-noise`).
    pub misclass_retire_after: usize,
    /// Fraction of the iteration budget the misclassified phase may
    /// consume (1.0 = the paper's behaviour: take whatever it needs).
    /// Lowering it keeps discovery alive when false negatives are
    /// plentiful — e.g. under label noise, where every flipped object
    /// spawns a phantom FN.
    pub misclass_budget_fraction: f64,

    // --- Boundary exploitation (§5) --------------------------------------
    /// α_max: cap on boundary-phase samples per iteration.
    pub boundary_alpha_max: usize,
    /// x: normalized half-width of the sampling slab around a boundary
    /// (paper sets x = 1).
    pub boundary_x: f64,
    /// Adaptive per-boundary sample sizing from split-rule change (§5.2).
    pub adaptive_boundary: bool,
    /// Boundary movement (normalized units) that counts as "fully
    /// changed" for the adaptive allocation. The paper's `pc` is the
    /// change of the boundary's normalized value; this scale converts it
    /// to a fraction of the full per-boundary allocation.
    pub boundary_change_scale: f64,
    /// er: error-floor samples per boundary even when unchanged (§5.2).
    pub boundary_error_floor: usize,
    /// Skip sampling slabs that overlap the previous iteration's slabs
    /// (non-overlapping sampling areas, §5.2).
    pub nonoverlap_boundary: bool,
    /// Overlap fraction above which a slab counts as redundant.
    pub nonoverlap_threshold: f64,
    /// Sample the non-boundary dimensions over their whole domain instead
    /// of the rectangle extent (irrelevant-attribute identification,
    /// §5.2).
    pub domain_sampling: bool,

    // --- Model & loop -----------------------------------------------------
    /// Decision-tree induction parameters.
    pub tree: TreeParams,
    /// Which phases run (ablations).
    pub phases: PhaseToggles,
    /// Evaluate the F-measure every `eval_every` iterations (1 = always).
    pub eval_every: usize,
    /// Worker threads for the parallel hot paths (full-view evaluation,
    /// tree fitting, index construction). 0 = one per available core; the
    /// `AIDE_THREADS` environment variable overrides this value; 1 runs
    /// everything inline on the calling thread. Results are bit-identical
    /// for any setting.
    pub threads: usize,
    /// Horizontal shards of the extraction engine: the sampled view is
    /// split into this many contiguous row ranges, each with its own
    /// index and region cache, built and queried in parallel. 0 = one
    /// shard per worker thread; the `AIDE_SHARDS` environment variable
    /// overrides this value; 1 keeps the monolithic index. Samples,
    /// labels and the RNG stream are bit-identical for any setting.
    pub shards: usize,
    /// Consult the extraction engine's region-result cache (on by
    /// default). The sampled view is immutable, so cached rectangle
    /// results never go stale; a hit still counts as an extraction query
    /// but charges 0 `tuples_examined`. Turning this off restores the
    /// pre-cache cost accounting (every query re-examines tuples) — the
    /// returned samples and labels are identical either way.
    pub region_cache: bool,
    /// Structured tracing handle ([`aide_util::trace`]). Disabled by
    /// default: every emission is one branch and the session behaves
    /// exactly as untraced. An enabled tracer records span, wave, eval
    /// and pool events into its ring buffer; drain or serialize it after
    /// the session (`aide explore --trace out.jsonl` does both). Event
    /// content (everything but wall-clock fields) is bit-identical for
    /// any `threads` / `AIDE_THREADS` setting.
    pub tracer: Tracer,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            samples_per_iteration: 20,
            discovery_strategy: DiscoveryStrategy::Grid,
            grid_beta: 4,
            max_exploration_level: 4,
            cluster_k0: 16,
            cluster_fit_cap: 20_000,
            gamma_fraction: 0.4,
            density_aware_gamma: true,
            hybrid_switch_after: 32,
            hybrid_min_hit_rate: 0.05,
            hints: Hints::default(),
            misclass_f: 10,
            misclass_y: 3.0,
            clustered_misclassified: true,
            adaptive_misclass_y: false,
            misclass_retire_after: usize::MAX,
            misclass_budget_fraction: 1.0,
            boundary_alpha_max: 10,
            boundary_x: 1.0,
            adaptive_boundary: true,
            boundary_change_scale: 2.0,
            boundary_error_floor: 1,
            nonoverlap_boundary: true,
            nonoverlap_threshold: 0.9,
            domain_sampling: true,
            // A minimum leaf size (Weka's CART enforces one too) is what
            // makes the misclassified phase work: an isolated relevant
            // sample cannot form its own pure leaf, so it shows up as a
            // false negative that phase 2 then densifies into an area.
            tree: TreeParams {
                min_samples_leaf: 2,
                min_samples_split: 4,
                ..TreeParams::default()
            },
            phases: PhaseToggles::default(),
            eval_every: 1,
            threads: 0,
            shards: 0,
            region_cache: true,
            tracer: Tracer::disabled(),
        }
    }
}

impl SessionConfig {
    /// The discovery level implied by a distance hint: the shallowest
    /// level whose cell width δ = 100/(β·2^ℓ) does not exceed the hinted
    /// minimum area width (paper §3.1), clamped to the configured maximum
    /// level.
    pub fn hinted_start_level(&self) -> usize {
        let Some(width) = self.hints.min_area_width else {
            return 0;
        };
        let mut level = 0usize;
        while level < self.max_exploration_level
            && 100.0 / (self.grid_beta as f64 * (1 << level) as f64) > width
        {
            level += 1;
        }
        level
    }
}

/// When an exploration session stops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopCondition {
    /// Stop once the F-measure reaches this value.
    pub target_f: Option<f64>,
    /// Stop once this many objects have been labeled.
    pub max_labels: Option<usize>,
    /// Hard cap on iterations.
    pub max_iterations: usize,
}

impl Default for StopCondition {
    fn default() -> Self {
        Self {
            target_f: None,
            max_labels: Some(500),
            max_iterations: 100,
        }
    }
}

impl StopCondition {
    /// Stop at the given accuracy (or the default 100-iteration cap).
    pub fn at_accuracy(f: f64) -> Self {
        Self {
            target_f: Some(f),
            max_labels: None,
            max_iterations: 200,
        }
    }

    /// Stop after labeling `n` objects.
    pub fn at_labels(n: usize) -> Self {
        Self {
            target_f: None,
            max_labels: Some(n),
            max_iterations: 10 * n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_papers_setup() {
        let c = SessionConfig::default();
        assert_eq!(c.samples_per_iteration, 20);
        assert_eq!(c.boundary_x, 1.0);
        assert!(c.misclass_f >= 10 && c.misclass_f <= 25);
        assert!(c.gamma_fraction < 0.5);
        assert_eq!(c.discovery_strategy, DiscoveryStrategy::Grid);
    }

    #[test]
    fn hinted_start_level_matches_cell_width() {
        let mut c = SessionConfig {
            grid_beta: 4,
            max_exploration_level: 3,
            ..SessionConfig::default()
        };
        // No hint: level 0.
        assert_eq!(c.hinted_start_level(), 0);
        // Hint 25: δ at level 0 is 100/4 = 25 ≤ 25 → level 0.
        c.hints.min_area_width = Some(25.0);
        assert_eq!(c.hinted_start_level(), 0);
        // Hint 10: level 1 gives δ = 12.5 > 10, level 2 gives 6.25 ≤ 10.
        c.hints.min_area_width = Some(10.0);
        assert_eq!(c.hinted_start_level(), 2);
        // Tiny hint clamps to max level.
        c.hints.min_area_width = Some(0.001);
        assert_eq!(c.hinted_start_level(), 3);
    }

    #[test]
    fn stop_condition_constructors() {
        let s = StopCondition::at_accuracy(0.7);
        assert_eq!(s.target_f, Some(0.7));
        assert_eq!(s.max_labels, None);
        let s = StopCondition::at_labels(300);
        assert_eq!(s.max_labels, Some(300));
    }
}

//! Deterministic utilities underpinning the AIDE reproduction.
//!
//! Every stochastic component of the system — dataset generation, sample
//! extraction, k-means initialization, target-query placement — draws its
//! randomness from the generators in this crate so that every experiment in
//! the paper reproduction is bit-for-bit replayable from a single seed.
//!
//! The crate provides:
//!
//! * [`rng`] — [SplitMix64](rng::SplitMix64) and
//!   [Xoshiro256++](rng::Xoshiro256pp) pseudo-random generators plus the
//!   [`Rng`](rng::Rng) trait with uniform sampling, shuffling and choice
//!   helpers;
//! * [`dist`] — normal, truncated-normal and Zipf distributions used by the
//!   synthetic data generators;
//! * [`stats`] — online mean/variance, quantiles and histogram helpers used
//!   by the evaluation harness;
//! * [`par`] — a dependency-free scoped worker pool whose chunked
//!   map/reduce is bit-identical to a serial run for any thread count, so
//!   parallelism never breaks replayability;
//! * [`trace`] — a zero-dependency structured tracing layer: ring-buffered
//!   typed events serialized to JSONL (schema `aide-trace/1`), with
//!   deterministic (timing-stripped) content across thread counts;
//! * [`json`] — the reading half of the JSON story: a total, bounded
//!   parser over a closed value model whose writer reuses the trace
//!   layer's bit-exact serialization, powering the `aide-serve/1` wire
//!   protocol.
//!
//! ```
//! use aide_util::rng::{Rng, Xoshiro256pp};
//!
//! // Same seed, same stream — every experiment is replayable.
//! let mut a = Xoshiro256pp::seed_from_u64(42);
//! let mut b = Xoshiro256pp::seed_from_u64(42);
//! assert_eq!(a.uniform(0.0, 100.0), b.uniform(0.0, 100.0));
//! ```

#![deny(missing_docs)]

pub mod dist;
pub mod geom;
pub mod json;
pub mod par;
pub mod rng;
pub mod stats;
pub mod trace;

pub use dist::{Normal, TruncatedNormal, Zipf};
pub use geom::Rect;
pub use json::Json;
pub use par::Pool;
pub use rng::{Rng, SeedStream, SplitMix64, Xoshiro256pp};
pub use stats::{quantile, Histogram, OnlineStats, Summary};
pub use trace::{Event, Tracer, Value};

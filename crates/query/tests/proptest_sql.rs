//! Property-based tests: every query the query layer can produce must
//! round-trip through its own SQL rendering and parser, and evaluation
//! must agree with direct predicate semantics.

use aide_data::{DataType, Schema, TableBuilder, Value};
use aide_query::{parse_selection, simplify, CmpOp, Comparison, Conjunction, Selection};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
    ]
}

fn comparison_strategy() -> impl Strategy<Value = Comparison> {
    (
        prop_oneof![Just("age"), Just("dosage"), Just("rowc"), Just("x_1")],
        op_strategy(),
        // Values the SQL formatter renders exactly (6 decimal places).
        (-1_000_000i32..1_000_000).prop_map(|v| v as f64 / 64.0),
    )
        .prop_map(|(attr, op, value)| Comparison::new(attr, op, value))
}

fn selection_strategy() -> impl Strategy<Value = Selection> {
    proptest::collection::vec(proptest::collection::vec(comparison_strategy(), 1..5), 0..4)
        .prop_map(|disjuncts| {
            Selection::new("t", disjuncts.into_iter().map(Conjunction::new).collect())
        })
}

proptest! {
    #[test]
    fn sql_round_trips(q in selection_strategy()) {
        let sql = q.to_sql();
        let parsed = parse_selection(&sql).expect("rendered SQL parses");
        prop_assert_eq!(parsed, q);
    }

    #[test]
    fn rendered_sql_mentions_every_term(q in selection_strategy()) {
        let sql = q.to_sql();
        for conj in &q.disjuncts {
            for term in &conj.terms {
                prop_assert!(sql.contains(&term.attr), "missing {} in {sql}", term.attr);
            }
        }
    }

    #[test]
    fn cmp_op_eval_matches_rust_operators(op in op_strategy(), a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let expected = match op {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
        };
        prop_assert_eq!(op.eval(a, b), expected);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "[ -~]{0,80}") {
        let _ = parse_selection(&input);
    }

    /// Simplification must be semantics-preserving: the simplified query
    /// selects exactly the same rows on a probe table, and is idempotent.
    #[test]
    fn simplify_preserves_semantics(q in selection_strategy()) {
        // A probe table over the attributes the strategy uses.
        let schema = Schema::from_pairs(&[
            ("age", DataType::Float),
            ("dosage", DataType::Float),
            ("rowc", DataType::Float),
            ("x_1", DataType::Float),
        ]).expect("schema");
        let mut b = TableBuilder::new("t", schema);
        let mut v = -16_000.0f64;
        while v <= 16_000.0 {
            b.push_row(vec![
                Value::Float(v),
                Value::Float(-v),
                Value::Float(v / 2.0),
                Value::Float(v * 2.0),
            ]).expect("row");
            v += 977.0; // irregular stride crosses strict/non-strict bounds
        }
        let table = b.finish();
        let simplified = simplify(&q);
        prop_assert_eq!(
            simplified.evaluate(&table).expect("simplified evaluates"),
            q.evaluate(&table).expect("original evaluates")
        );
        // Idempotence.
        prop_assert_eq!(simplify(&simplified), simplified);
    }
}

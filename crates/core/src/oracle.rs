//! Relevance oracles: who answers "is this object interesting?".
//!
//! The paper evaluates with a simulated user labeling by target-query
//! membership (§6.1), but the framework itself is oracle-agnostic — in a
//! deployment the oracle is a human looking at the extracted tuple. This
//! module abstracts over both so [`ExplorationSession`](crate::session::ExplorationSession)
//! can drive either.

use aide_index::Sample;
use aide_util::rng::{Rng, Xoshiro256pp};

use crate::target::{SimulatedUser, TargetQuery};

/// A source of relevance labels.
pub trait RelevanceOracle {
    /// Reviews one extracted object and returns whether it is relevant.
    fn label(&mut self, sample: &Sample) -> bool;

    /// Total objects reviewed so far (the paper's user-effort metric).
    fn reviewed(&self) -> usize;
}

impl RelevanceOracle for SimulatedUser {
    fn label(&mut self, sample: &Sample) -> bool {
        SimulatedUser::label(self, &sample.point)
    }

    fn reviewed(&self) -> usize {
        SimulatedUser::reviewed(self)
    }
}

/// An oracle backed by an arbitrary labeling function — a UI prompt, a
/// rule, a crowd worker, or (as in [`crate::nonlinear`]) a non-linear
/// ground-truth predicate the paper's linear model can only approximate.
pub struct CallbackOracle<F: FnMut(&Sample) -> bool> {
    callback: F,
    reviewed: usize,
}

impl<F: FnMut(&Sample) -> bool> CallbackOracle<F> {
    /// Wraps a labeling function.
    pub fn new(callback: F) -> Self {
        Self {
            callback,
            reviewed: 0,
        }
    }
}

impl<F: FnMut(&Sample) -> bool> RelevanceOracle for CallbackOracle<F> {
    fn label(&mut self, sample: &Sample) -> bool {
        self.reviewed += 1;
        (self.callback)(sample)
    }

    fn reviewed(&self) -> usize {
        self.reviewed
    }
}

/// Wraps any oracle with label noise: each answer is flipped with
/// probability `flip_rate`. The paper assumes a "binary, non noisy
/// relevance system" (§2.1); this wrapper is the substrate for the
/// `ext-noise` robustness study — how gracefully does steering degrade
/// when the user errs?
pub struct NoisyOracle<O: RelevanceOracle> {
    inner: O,
    flip_rate: f64,
    rng: Xoshiro256pp,
    flipped: usize,
}

impl<O: RelevanceOracle> NoisyOracle<O> {
    /// Wraps `inner`, flipping each label with probability `flip_rate`
    /// (clamped to `[0, 1]`).
    pub fn new(inner: O, flip_rate: f64, seed: u64) -> Self {
        Self {
            inner,
            flip_rate: flip_rate.clamp(0.0, 1.0),
            rng: Xoshiro256pp::seed_from_u64(seed),
            flipped: 0,
        }
    }

    /// How many labels were flipped so far.
    pub fn flipped(&self) -> usize {
        self.flipped
    }
}

impl<O: RelevanceOracle> RelevanceOracle for NoisyOracle<O> {
    fn label(&mut self, sample: &Sample) -> bool {
        let truth = self.inner.label(sample);
        if self.rng.chance(self.flip_rate) {
            self.flipped += 1;
            !truth
        } else {
            truth
        }
    }

    fn reviewed(&self) -> usize {
        self.inner.reviewed()
    }
}

/// Builds the paper's standard setup: a simulated user plus the matching
/// ground truth for accuracy evaluation.
pub fn simulated(target: TargetQuery) -> (Box<dyn RelevanceOracle + Send>, Option<TargetQuery>) {
    let truth = target.clone();
    (Box::new(SimulatedUser::new(target)), Some(truth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_util::geom::Rect;

    fn sample(point: &[f64]) -> Sample {
        Sample {
            view_index: 0,
            row_id: 0,
            point: point.to_vec(),
        }
    }

    #[test]
    fn simulated_user_oracle_counts_reviews() {
        let target = TargetQuery::new(vec![Rect::new(vec![0.0], vec![10.0])]);
        let mut oracle: Box<dyn RelevanceOracle> = Box::new(SimulatedUser::new(target));
        assert!(oracle.label(&sample(&[5.0])));
        assert!(!oracle.label(&sample(&[50.0])));
        assert_eq!(oracle.reviewed(), 2);
    }

    #[test]
    fn callback_oracle_delegates_and_counts() {
        let mut oracle = CallbackOracle::new(|s: &Sample| s.point[0] > 1.0);
        assert!(!oracle.label(&sample(&[0.5])));
        assert!(oracle.label(&sample(&[2.0])));
        assert_eq!(oracle.reviewed(), 2);
    }

    #[test]
    fn noisy_oracle_flips_at_roughly_the_requested_rate() {
        let target = TargetQuery::new(vec![Rect::new(vec![0.0], vec![50.0])]);
        let mut oracle = NoisyOracle::new(SimulatedUser::new(target.clone()), 0.2, 1);
        let mut wrong = 0usize;
        let n = 5_000;
        for i in 0..n {
            let p = [(i % 100) as f64];
            let truth = target.contains(&p);
            if oracle.label(&sample(&p)) != truth {
                wrong += 1;
            }
        }
        assert_eq!(oracle.reviewed(), n);
        assert_eq!(oracle.flipped(), wrong);
        let rate = wrong as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.03, "flip rate {rate}");
        // Zero noise never flips.
        let mut clean = NoisyOracle::new(SimulatedUser::new(target.clone()), 0.0, 2);
        for i in 0..100 {
            let p = [i as f64];
            assert_eq!(clean.label(&sample(&p)), target.contains(&p));
        }
        assert_eq!(clean.flipped(), 0);
    }

    #[test]
    fn simulated_helper_pairs_oracle_with_truth() {
        let target = TargetQuery::new(vec![Rect::new(vec![0.0], vec![1.0])]);
        let (mut oracle, truth) = simulated(target.clone());
        assert_eq!(truth, Some(target));
        oracle.label(&sample(&[0.5]));
        assert_eq!(oracle.reviewed(), 1);
    }
}
